"""Microbenchmark: analytical Jacobian generation vs the autograd
baseline (Table 1's last column, measured rather than asserted)."""

import numpy as np

from repro.jacobian import autograd_tjac, conv2d_tjac, maxpool_tjac, relu_tjac
from repro.tensor import Tensor, ops

CI, CO, H, W = 2, 4, 10, 10


def test_conv_analytical(benchmark):
    rng = np.random.default_rng(0)
    weight = rng.standard_normal((CO, CI, 3, 3))
    benchmark.group = "Jacobian generation: conv"
    tj = benchmark(conv2d_tjac, weight, (H, W), 1, 1)
    assert tj.nnz > 0


def test_conv_autograd_baseline(benchmark):
    rng = np.random.default_rng(0)
    weight = Tensor(rng.standard_normal((CO, CI, 3, 3)))
    x = rng.standard_normal((CI, H, W))
    benchmark.group = "Jacobian generation: conv"

    def column_at_a_time():
        return autograd_tjac(
            lambda t: ops.conv2d(t.reshape(1, CI, H, W), weight, None, padding=1),
            x,
        )

    tj = benchmark.pedantic(column_at_a_time, rounds=1, iterations=1)
    assert tj.shape == (CI * H * W, CO * H * W)


def test_relu_analytical(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(CI * H * W)
    benchmark.group = "Jacobian generation: relu"
    tj = benchmark(relu_tjac, x)
    assert tj.shape == (CI * H * W, CI * H * W)


def test_maxpool_analytical(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((CI, H, W))
    benchmark.group = "Jacobian generation: maxpool"
    tj = benchmark(maxpool_tjac, x, 2)
    assert tj.nnz == CI * H * W
