"""Benchmark + regeneration of Figure 6 (Jacobian sparsity patterns)."""

from repro.experiments import fig6_patterns
from repro.experiments.common import Scale


def test_fig6_patterns(benchmark, save_report):
    result = benchmark(fig6_patterns.run, Scale.SMOKE)
    assert result["conv"]["sparsity"] > 0.5
    save_report(
        "fig6_patterns",
        fig6_patterns.render_report(result),
        fig6_patterns.result_rows(result),
    )
