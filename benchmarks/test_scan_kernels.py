"""Microbenchmarks of the scan kernels on the CPU substrate.

Compares the serial linear scan (≡ BP), the modified Blelloch scan, the
truncated variant, and Hillis–Steele on an RNN-shaped chain of dense
Jacobians.  On a serial CPU the Blelloch scan does ~2× the work of the
linear scan, so these numbers quantify the work overhead the paper
trades for Θ(log n) steps — the *step* win is shown by the PRAM
simulator (fig10), not by CPU wall-clock.
"""

import numpy as np
import pytest

from repro.scan import (
    DenseJacobian,
    GradientVector,
    ScanContext,
    blelloch_scan,
    hillis_steele_scan,
    linear_scan,
    truncated_blelloch_scan,
)

T, B, H = 256, 4, 20


def make_items():
    rng = np.random.default_rng(0)
    items = [GradientVector(rng.standard_normal((B, H)))]
    items += [
        DenseJacobian(rng.standard_normal((B, H, H))) for _ in range(T)
    ]
    return items


@pytest.mark.parametrize(
    "name,runner",
    [
        ("linear", lambda items: linear_scan(items, ScanContext().op)),
        ("blelloch", lambda items: blelloch_scan(items, ScanContext().op)),
        (
            "truncated_k4",
            lambda items: truncated_blelloch_scan(
                items, ScanContext().op, up_levels=4
            ),
        ),
        ("hillis_steele", lambda items: hillis_steele_scan(items, ScanContext().op)),
    ],
)
def test_scan_kernel(benchmark, name, runner):
    items = make_items()
    benchmark.group = f"scan kernels (T={T}, B={B}, H={H})"
    out = benchmark(runner, items)
    assert len(out) == T + 1
