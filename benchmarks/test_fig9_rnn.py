"""Benchmark + regeneration of Figure 9 (RNN loss vs wall-clock).

Benchmarks the *actual* backward computations of both engines on the
CPU substrate (T=200, the numerics behind the curve), and regenerates
the figure's data — loss series plus simulated-device time axes — once.
"""

import numpy as np
import pytest

from repro.core import RNNBPPSA
from repro.experiments import fig9_rnn_curve
from repro.experiments.common import Scale
from repro.nn import CrossEntropyLoss, RNNClassifier
from repro.tensor import Tensor

T, B, H = 200, 16, 20


def _clf():
    return RNNClassifier(1, H, 10, rng=np.random.default_rng(0))


def test_baseline_taped_backward(benchmark):
    clf = _clf()
    rng = np.random.default_rng(1)
    x = rng.standard_normal((B, T, 1))
    y = rng.integers(0, 10, B)
    loss_fn = CrossEntropyLoss()
    benchmark.group = "fig9: RNN backward (CPU substrate)"

    def step():
        clf.zero_grad()
        loss_fn(clf(Tensor(x)), y).backward()

    benchmark(step)


@pytest.mark.parametrize("algorithm", ["linear", "blelloch"])
def test_bppsa_backward(benchmark, algorithm):
    clf = _clf()
    engine = RNNBPPSA(clf, algorithm=algorithm)
    rng = np.random.default_rng(1)
    x = rng.standard_normal((B, T, 1))
    y = rng.integers(0, 10, B)
    benchmark.group = "fig9: RNN backward (CPU substrate)"
    benchmark(engine.compute_gradients, x, y)


def test_fig9_report(benchmark, save_report):
    result = benchmark.pedantic(
        fig9_rnn_curve.run, args=(Scale.SMOKE,), rounds=1, iterations=1
    )
    assert result["max_loss_divergence"] < 1e-9
    assert result["overall_speedup"] > 1.0
    save_report(
        "fig9_rnn_curve",
        fig9_rnn_curve.render_report(result),
        fig9_rnn_curve.result_rows(result),
    )
