"""Benchmark + regeneration of the §5.2 truncation-depth ablation."""

from repro.experiments import ablation_truncation
from repro.experiments.common import Scale


def test_ablation_truncation(benchmark, save_report):
    result = benchmark.pedantic(
        ablation_truncation.run, args=(Scale.SMOKE,), rounds=1, iterations=1
    )
    rows = {r["up_levels"]: r for r in result["rows"]}
    assert rows[0]["mm_steps"] == 0
    assert rows[2]["parallel_levels"] > rows[0]["parallel_levels"]
    save_report(
        "ablation_truncation",
        ablation_truncation.render_report(result),
        ablation_truncation.result_rows(result),
    )
