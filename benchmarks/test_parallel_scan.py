"""Microbenchmark: serial vs thread-parallel Blelloch scan on CPU.

Measures the real cost/benefit of dispatching each level's independent
⊙ products to a thread pool.  With small per-op matrices (or a BLAS
that is itself multi-threaded) dispatch overhead dominates; the value
of the executor is the executable demonstration that levels are
dependency-free — the property the PRAM simulator's schedules rely on.
"""

import numpy as np
import pytest

from repro.scan import (
    DenseJacobian,
    GradientVector,
    ParallelScanExecutor,
    ScanContext,
)

T, B, H = 64, 1, 96  # larger matrices so BLAS dominates scheduling cost


def make_items():
    rng = np.random.default_rng(0)
    items = [GradientVector(rng.standard_normal((B, H)))]
    items += [DenseJacobian(rng.standard_normal((H, H))) for _ in range(T)]
    return items


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_blelloch(benchmark, workers):
    items = make_items()
    ctx = ScanContext()
    benchmark.group = f"parallel scan (T={T}, H={H})"
    with ParallelScanExecutor(workers) as ex:
        out = benchmark(ex.blelloch_scan, items, ctx.op)
    assert len(out) == T + 1
