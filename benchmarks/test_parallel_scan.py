"""Microbenchmark: the Blelloch scan across execution backends.

Measures the real cost/benefit of dispatching each level's independent
⊙ products to the registered backends (``serial`` / ``thread:N`` /
``process:N`` — see :mod:`repro.backend`).  With small per-op matrices
(or a BLAS that is itself multi-threaded) dispatch overhead dominates
and the serial executor wins; the point of the suite is to report both
honestly, and to demonstrate executable proof that the level structure
the PRAM simulator schedules really is dependency-free.  All backends
produce bitwise-identical outputs — only wall-clock differs.

A per-backend timing table is saved to
``benchmarks/results/parallel_backends.txt``.
"""

import time

import numpy as np
import pytest

from repro.backend import get_executor
from repro.bench.runner import SCAN_PARAMS, make_scan_items
from repro.experiments.common import Scale
from repro.scan import ScanContext, blelloch_scan

# Workload shared with the repro.bench runner, so the pytest timings and
# the BENCH_parallel_backends.json records measure the same scan.
# Larger matrices so BLAS dominates scheduling cost.
_P = SCAN_PARAMS[Scale.SMOKE]
T, B, H = _P["seq_len"], _P["batch"], _P["hidden"]

BACKENDS = ["serial", "thread:2", "thread:4", "process:2"]


def make_items():
    return make_scan_items(T, B, H)


@pytest.mark.parametrize("spec", BACKENDS)
def test_backend_blelloch(benchmark, spec):
    items = make_items()
    ctx = ScanContext()
    benchmark.group = f"scan backends (T={T}, H={H})"
    with get_executor(spec) as ex:
        out = benchmark.pedantic(
            blelloch_scan,
            args=(items, ctx.op),
            kwargs={"executor": ex},
            rounds=5,
            iterations=1,
            warmup_rounds=1,
        )
    assert len(out) == T + 1


def _time_backend(items, spec):
    """(best-of-3 seconds, last output, degraded?) for one backend."""
    with get_executor(spec) as ex:
        blelloch_scan(items, ScanContext().op, executor=ex)  # warm pools
        best = float("inf")
        for _ in range(3):
            ctx = ScanContext()
            t0 = time.perf_counter()
            out = blelloch_scan(items, ctx.op, executor=ex)
            best = min(best, time.perf_counter() - t0)
        degraded = getattr(ex, "_broken", False)
    return best, out, degraded


def test_backend_report(save_report):
    """One timed pass per backend → per-backend table + bitwise check."""
    assert "serial" in BACKENDS  # the reference row
    items = make_items()
    timings = {spec: _time_backend(items, spec) for spec in BACKENDS}
    serial_s, ref, _ = timings["serial"]

    lines = [
        f"Blelloch scan execution backends (T={T}, B={B}, H={H})",
        "",
        f"{'backend':>10}  {'best of 3 (ms)':>15}  {'vs serial':>9}  bitwise",
        f"{'-'*10}  {'-'*15}  {'-'*9}  -------",
    ]
    any_degraded = False
    rows = []
    for spec in BACKENDS:
        best, out, degraded = timings[spec]
        identical = all(
            np.array_equal(out[p].data, ref[p].data) for p in range(1, T + 1)
        )
        assert identical, f"backend {spec} diverged from serial"
        # A degraded process pool ran inline — label it rather than
        # publishing an inline timing as a process-pool measurement.
        label = f"{spec}*" if degraded else spec
        any_degraded = any_degraded or degraded
        lines.append(
            f"{label:>10}  {best * 1e3:>15.3f}  {serial_s / best:>8.2f}x  yes"
        )
        rows.append(
            {
                "backend": spec,
                "best_of_3_ms": best * 1e3,
                "vs_serial": serial_s / best,
                "bitwise_identical": identical,
                "degraded": degraded,
            }
        )
    if any_degraded:
        lines.append("* backend degraded to inline execution on this platform")
    save_report("parallel_backends", "\n".join(lines), rows)
