#!/usr/bin/env python
"""Input gradients through the scan: saliency maps from BPPSA.

The paper's exclusive scan produces ∇x_i for i = 1..n; one extra ⊙
application recovers ∇x_0 — the gradient w.r.t. the *model input*,
which powers saliency maps and adversarial probes.  This example trains
a small CNN on the synthetic image task, then compares BPPSA's input
gradient against taped autograd and renders a coarse saliency map.

Run:  python examples/input_saliency.py
"""

import numpy as np

import repro
from repro.core import Trainer
from repro.data import SyntheticImages
from repro.nn import CrossEntropyLoss, Sequential
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.optim import SGD
from repro.tensor import Tensor

rng = np.random.default_rng(0)
model = Sequential(
    Conv2d(1, 4, 3, padding=1, rng=rng),
    ReLU(),
    MaxPool2d(2),
    Flatten(),
    Linear(4 * 8 * 8, 4, rng=rng),
)
ds = SyntheticImages(num_samples=128, shape=(1, 16, 16), num_classes=4, seed=1)

# quick training so gradients mean something
trainer = Trainer(
    model, SGD(model.parameters(), lr=0.02, momentum=0.9),
    engine=repro.build_engine(model),
)
for epoch in range(2):
    trainer.fit(ds.batches(16, epoch_seed=epoch))
_, acc = trainer.evaluate(ds.batches(32))
print(f"train accuracy after 2 epochs: {acc:.2f}")

# --- input gradient: BPPSA vs taped autograd -----------------------------
x, y = next(ds.batches(4))
engine = repro.build_engine(model)
engine.compute_gradients(x, y, input_gradient=True)
bppsa_grad = engine.last_input_gradient

xt = Tensor(x, requires_grad=True)
loss = CrossEntropyLoss()(model(xt), y)
model.zero_grad()
loss.backward()
print(f"max |Δ input grad| vs autograd: {np.abs(bppsa_grad - xt.grad).max():.2e}")

# --- coarse saliency raster ------------------------------------------------
sal = np.abs(bppsa_grad[0, 0])
sal = sal / sal.max()
chars = " .:-=+*#%@"
print(f"\nsaliency for one class-{y[0]} sample (input 16×16):")
for row in sal:
    print("".join(chars[int(v * (len(chars) - 1))] for v in row))
