#!/usr/bin/env python
"""Quickstart: back-propagation as a parallel scan.

Builds a small MLP, computes gradients three ways — taped baseline BP,
BPPSA with the linear scan (serial, literally Eq. 3), and BPPSA with
the modified Blelloch scan — and shows all three agree to floating
point, then takes a few optimizer steps driven by the Blelloch engine.

Engines are constructed through the declarative facade: one
``repro.build_engine(model, spec)`` call, where the spec string names
the whole scan surface (algorithm / executor backend / sparse
dispatch — see ``repro.config``).

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.nn import CrossEntropyLoss, make_mlp
from repro.optim import SGD
from repro.tensor import Tensor

rng = np.random.default_rng(0)

# A 4-layer tanh MLP: 32 → 64 → 64 → 10.
model = make_mlp([32, 64, 64, 10], activation="tanh", rng=rng)
x = rng.standard_normal((8, 32))
y = rng.integers(0, 10, 8)

# --- 1. baseline: taped reverse-mode BP ---------------------------------
loss_fn = CrossEntropyLoss()
model.zero_grad()
loss = loss_fn(model(Tensor(x)), y)
loss.backward()
baseline = {name: p.grad.copy() for name, p in model.named_parameters()}
print(f"baseline BP          loss={float(loss.data):.4f}")

# --- 2. BPPSA, serial linear scan (identical order to BP) ---------------
for algorithm in ("linear", "blelloch"):
    engine = repro.build_engine(model, algorithm)
    grads = engine.compute_gradients(x, y)
    worst = max(
        np.abs(grads[id(p)].reshape(p.data.shape) - baseline[name]).max()
        for name, p in model.named_parameters()
    )
    ops = len(engine.context.trace)
    levels = len({(s.info.phase, s.info.level) for s in engine.context.trace})
    print(
        f"BPPSA ({algorithm:9s})  max |Δgrad| vs BP = {worst:.2e}   "
        f"{ops} ⊙ ops in {levels} parallel levels"
    )

# --- 3. train with the Blelloch engine -----------------------------------
engine = repro.build_engine(model, "blelloch")
opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
print("\ntraining with BPPSA gradients:")
for step in range(10):
    grads = engine.compute_gradients(x, y)
    engine.apply_gradients(grads)
    opt.step()
    if step % 3 == 0 or step == 9:
        logits = engine.forward(x)
        shifted = logits - logits.max(axis=1, keepdims=True)
        nll = np.log(np.exp(shifted).sum(axis=1)) - shifted[np.arange(8), y]
        print(f"  step {step:2d}  loss={nll.mean():.4f}")
