#!/usr/bin/env python
"""Retraining a pruned VGG-11 with BPPSA (paper Section 4.2).

1. Build a (width-scaled) VGG-11, prune 97 % of conv/linear weights by
   global magnitude (See et al., 2016).
2. Show the effect on the convolutions' transposed Jacobians: pruning
   the filters prunes the Jacobians (their values depend only on filter
   weights — Algorithm 4), slashing the FLOPs of every scan step.
3. Retrain the pruned network for a few steps with BPPSA gradients,
   re-applying masks after each update, and verify sparsity holds.

Run:  python examples/pruned_vgg_retrain.py
"""

import numpy as np

import repro
from repro.data import SyntheticImages
from repro.jacobian import conv2d_tjac_pruned
from repro.nn import Sequential, VGG11
from repro.optim import SGD
from repro.pruning import magnitude_prune, model_sparsity

rng = np.random.default_rng(0)
model = VGG11(rng=rng, width_multiplier=0.125)

# --- Jacobian sparsity before/after pruning ------------------------------
conv1 = model.features[0]
dense_nnz = conv2d_tjac_pruned(conv1.weight.data, (32, 32), padding=1).nnz
masks = magnitude_prune(model, fraction=0.97, scope="global")
pruned_nnz = conv2d_tjac_pruned(conv1.weight.data, (32, 32), padding=1).nnz
print(f"model weight sparsity after pruning: {model_sparsity(model):.3f}")
print(
    f"conv1 transposed-Jacobian nnz: {dense_nnz} → {pruned_nnz} "
    f"({pruned_nnz / dense_nnz:.1%} kept)"
)

# --- retrain with BPPSA ----------------------------------------------------
# build_engine flattens features+classifier models (VGG-11) itself
engine = repro.build_engine(model, "blelloch")
full = engine.model
opt = SGD(full.parameters(), lr=1e-2, momentum=0.9)
data = SyntheticImages(num_samples=128, seed=1)

print("\nretraining (masks re-applied after each step):")
for step, (x, y) in enumerate(data.batches(16, num_batches=6)):
    grads = engine.compute_gradients(x, y)
    engine.apply_gradients(grads)
    opt.step()
    masks.reapply(model)
    masks.assert_applied(model)
    logits = engine.last_logits
    shifted = logits - logits.max(axis=1, keepdims=True)
    nll = np.log(np.exp(shifted).sum(axis=1)) - shifted[np.arange(len(y)), y]
    print(f"  step {step}  loss={nll.mean():.4f}  sparsity={model_sparsity(model):.3f}")

cache = engine.context.cache
print(
    f"\nSpGEMM plan cache: {len(cache)} plans, {cache.hits} hits / "
    f"{cache.misses} misses — the symbolic phase amortizes across steps"
)
