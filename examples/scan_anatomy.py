#!/usr/bin/env python
"""Anatomy of the modified Blelloch scan (paper Figures 1 and 4).

Walks through the scan on a synthetic chain of transposed Jacobians,
printing every ⊙ application by phase and level, comparing step counts
against the serial baseline, demonstrating why the down-sweep must
reverse operand order for the non-commutative ⊙, re-running the
scan on every registered execution backend (``repro.backend``) to show
the results are bitwise-identical, and ending with the declarative
configuration plane (``repro.config``): spec-string round-tripping and
``repro.configure`` scoped overrides.

Run:  python examples/scan_anatomy.py
"""

import numpy as np

from repro.backend import available_backends, get_executor
from repro.pram import GPUCostModel, PRAMMachine, RTX_2070
from repro.scan import (
    DenseJacobian,
    GradientVector,
    ScanContext,
    blelloch_scan,
    build_blelloch_dag,
    build_linear_dag,
    linear_scan,
    simple_op,
)

rng = np.random.default_rng(0)
N, H = 8, 4  # 8 stages of H×H Jacobians (Figure 4's VGG-11 conv stack)

items = [GradientVector(rng.standard_normal((1, H)))]
items += [DenseJacobian(rng.standard_normal((H, H))) for _ in range(N)]

# --- numeric: both algorithms agree --------------------------------------
ref = linear_scan(items, ScanContext().op)
ctx = ScanContext()
out = blelloch_scan(items, ctx.op)
worst = max(
    np.abs(out[p].data - ref[p].data).max() for p in range(1, N + 1)
)
print(f"Blelloch vs linear scan: max |Δ| = {worst:.2e} over {N} outputs")

# --- the schedule ----------------------------------------------------------
print("\n⊙ applications by level (phase d: positions l,r → kind):")
for rec in ctx.trace:
    i = rec.info
    print(f"  {i.phase:>4} d={i.level}: a[{i.left}] ⊙ a[{i.right}]  ({rec.kind})")

dag = build_blelloch_dag(N + 1)
lin = build_linear_dag(N + 1)
print(f"\nparallel levels: {dag.num_levels} (vs {lin.num_levels} serial steps)")

machine = PRAMMachine(GPUCostModel(RTX_2070))
sched = machine.schedule(dag)
print(f"simulated makespan on RTX 2070: {sched.makespan_seconds * 1e6:.1f} µs")

# --- pluggable execution backends -----------------------------------------
# The ops of one level are independent, so *where* they run is a plug
# point: any registered backend executes the same schedule with the
# same per-op order, hence bitwise-identical outputs.
print(f"\nexecution backends registered: {', '.join(available_backends())}")
for spec in ("serial", "thread:2", "process:2"):
    with get_executor(spec) as ex:
        alt = blelloch_scan(items, ScanContext().op, executor=ex)
    identical = all(
        np.array_equal(alt[p].data, out[p].data) for p in range(1, N + 1)
    )
    print(f"  {spec:>9}: bitwise-identical to serial = {identical}")

# --- non-commutativity: why the down-sweep reverses operands --------------
concat = simple_op(lambda a, b: b + a)  # A ⊙ B = BA on strings
words = list("abcdefg")
result = blelloch_scan(words, concat, identity="")
expected = ["".join(reversed(words[:k])) for k in range(len(words))]
assert result == expected, (result, expected)
print("\nnon-commutative string check:", " ".join(repr(s) for s in result))
print("(each output is the reversed concatenation of the prefix — ⊙ order held)")

# --- the configuration plane ----------------------------------------------
# Every knob above is one declarative value: a ScanConfig, buildable
# from a spec string that round-trips losslessly, and scopable via
# repro.configure() instead of mutating environment variables.
import repro

cfg = repro.ScanConfig.from_spec("blelloch/thread:2/sparse=auto:0.4")
assert repro.ScanConfig.from_spec(cfg.spec()) == cfg
print(f"\nScanConfig spec round-trip: {cfg.spec()!r}")
print(f"resolved: {cfg.resolve().spec()!r}")

with repro.configure(executor="thread:2"):
    # executor=None call sites now resolve to the scoped override —
    # same schedule, same per-op order, still bitwise-identical.
    scoped = blelloch_scan(items, ScanContext().op)
assert all(np.array_equal(scoped[p].data, out[p].data) for p in range(1, N + 1))
print("configure(executor='thread:2') scoped scan: bitwise-identical = True")
