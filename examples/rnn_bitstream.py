#!/usr/bin/env python
"""The paper's end-to-end workload: RNN on bitstream classification.

Trains the vanilla RNN (H=20) of Section 4.1 on the synthetic bitstream
task (Eq. 8) with Adam lr=3e-5, comparing the baseline BP engine with
BPPSA — same seed, same batches.  Reports per-iteration losses (which
match to float precision), measured CPU backward time, and the
simulated RTX 2070 timings from the device model (the Figure 9 axes).

Run:  python examples/rnn_bitstream.py [--seq-len 200] [--iters 30]
"""

import argparse
import time

import numpy as np

import repro
from repro.core import Trainer
from repro.data import BitstreamDataset
from repro.nn import RNNClassifier
from repro.optim import Adam
from repro.pram import RTX_2070
from repro.pram.rnn_timing import simulate_rnn_iteration


def train(use_bppsa: bool, seq_len: int, iters: int, batch: int, seed: int):
    clf = RNNClassifier(1, 20, 10, rng=np.random.default_rng(seed))
    opt = Adam(clf.parameters(), lr=3e-5)
    engine = repro.build_engine(clf, "blelloch") if use_bppsa else None
    trainer = Trainer(clf, opt, engine=engine)
    ds = BitstreamDataset(seq_len=seq_len, num_samples=2048, seed=seed)
    t0 = time.perf_counter()
    result = trainer.fit(ds.batches(batch, num_batches=iters))
    elapsed = time.perf_counter() - t0
    return result, elapsed


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seq-len", type=int, default=200)
    ap.add_argument("--iters", type=int, default=20)
    ap.add_argument("--batch", type=int, default=16)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args()

    print(f"RNN H=20, T={args.seq_len}, B={args.batch}, Adam lr=3e-5")
    base, base_s = train(False, args.seq_len, args.iters, args.batch, args.seed)
    ours, ours_s = train(True, args.seq_len, args.iters, args.batch, args.seed)

    print(f"{'iter':>5} {'loss (BP)':>12} {'loss (BPPSA)':>12}")
    for i in range(0, args.iters, max(1, args.iters // 8)):
        print(f"{i:>5} {base.losses[i]:>12.6f} {ours.losses[i]:>12.6f}")
    div = max(abs(a - b) for a, b in zip(base.losses, ours.losses))
    print(f"max loss divergence: {div:.3e}  (exact reconstruction)")

    print(f"\nmeasured CPU wall-clock: baseline {base_s:.2f}s, BPPSA {ours_s:.2f}s")
    sim = simulate_rnn_iteration(args.seq_len, args.batch, 20, RTX_2070)
    print(
        f"simulated RTX 2070: backward speedup {sim.backward_speedup:.2f}x, "
        f"overall {sim.overall_speedup:.2f}x "
        "(paper at T=1000: 4.53x / 2.17x)"
    )


if __name__ == "__main__":
    main()
